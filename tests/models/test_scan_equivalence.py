"""Streaming vs stacked scan: model-level equivalence properties.

The ``scan_mode`` switch must be semantically invisible: for both RouteNet
architectures, the streaming checkpointed scan has to reproduce the stacked
formulation's predictions and every parameter gradient within rounding, in
whichever precision the suite runs at — that is what licenses keeping only
the streaming path on the training hot loop while the stacked path remains
a gradcheck cross-validation reference.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    tensorize_sample,
)
from repro.datasets.batching import merge_tensorized_samples
from repro.models import ExtendedRouteNet, RouteNet, RouteNetConfig
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor, no_grad

from tests.support import float_tolerance

BASE_CONFIG = RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                             message_passing_iterations=3, readout_hidden_sizes=(8,),
                             seed=0)


def _tensorized_mix(seed: int = 0):
    """Ragged scenarios (two topologies) plus their merged disjoint union."""
    from repro.topology import linear_topology, ring_topology

    samples = generate_dataset(ring_topology(5), DatasetConfig(num_samples=2, seed=seed))
    samples += generate_dataset(linear_topology(7),
                                DatasetConfig(num_samples=2, seed=seed + 50))
    normalizer = FeatureNormalizer().fit(samples)
    tensorized = [tensorize_sample(s, normalizer) for s in samples]
    return tensorized + [merge_tensorized_samples(tensorized)]


@pytest.fixture(scope="module")
def scenario_mix():
    return _tensorized_mix()


def _model_pair(model_cls):
    stream = model_cls(dataclasses.replace(BASE_CONFIG, scan_mode="stream"))
    stacked = model_cls(dataclasses.replace(BASE_CONFIG, scan_mode="stacked"))
    return stream, stacked


@pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
class TestScanModeEquivalence:
    def test_forward_matches(self, model_cls, scenario_mix):
        stream, stacked = _model_pair(model_cls)
        with no_grad():
            for sample in scenario_mix:
                np.testing.assert_allclose(
                    stream(sample).data, stacked(sample).data,
                    atol=float_tolerance(), rtol=float_tolerance(1e-9, 1e-4))

    def test_gradients_match(self, model_cls, scenario_mix):
        """Every parameter gradient of a training loss agrees across modes."""
        stream, stacked = _model_pair(model_cls)
        for sample in scenario_mix:
            grads = {}
            for label, model in (("stream", stream), ("stacked", stacked)):
                model.zero_grad()
                loss = mse_loss(model(sample), Tensor(sample.targets))
                loss.backward()
                grads[label] = {name: p.grad.copy()
                                for name, p in model.named_parameters()}
            for name, reference in grads["stacked"].items():
                scale = max(1.0, float(np.abs(reference).max()))
                np.testing.assert_allclose(
                    grads["stream"][name] / scale, reference / scale,
                    atol=float_tolerance(1e-8, 5e-3),
                    err_msg=f"{model_cls.__name__}.{name}")

    def test_predict_matches(self, model_cls, scenario_mix):
        """Inference (the streaming no-checkpoint path) agrees too."""
        stream, stacked = _model_pair(model_cls)
        for sample in scenario_mix:
            np.testing.assert_allclose(
                stream.predict(sample), stacked.predict(sample),
                atol=float_tolerance(), rtol=float_tolerance(1e-9, 1e-4))


def test_scan_mode_validated():
    with pytest.raises(ValueError):
        RouteNetConfig(scan_mode="lazy")


def test_default_scan_mode_is_streaming():
    assert RouteNetConfig().scan_mode == "stream"
