"""Streaming/compiled vs stacked scan: model-level equivalence properties.

The ``scan_mode`` switch must be semantically invisible: for both RouteNet
architectures, the streaming checkpointed scan *and* the compiled
bucket-vectorised kernel path have to reproduce the stacked formulation's
predictions and every parameter gradient within rounding, in whichever
precision the suite runs at — that is what licenses keeping the compiled
path on the training hot loop while the stacked path remains a gradcheck
cross-validation reference.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    tensorize_sample,
)
from repro.datasets.batching import merge_tensorized_samples
from repro.models import ExtendedRouteNet, RouteNet, RouteNetConfig
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor, no_grad

from tests.support import float_tolerance

BASE_CONFIG = RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                             message_passing_iterations=3, readout_hidden_sizes=(8,),
                             seed=0)


def _tensorized_mix(seed: int = 0):
    """Ragged scenarios (two topologies) plus their merged disjoint union."""
    from repro.topology import linear_topology, ring_topology

    samples = generate_dataset(ring_topology(5), DatasetConfig(num_samples=2, seed=seed))
    samples += generate_dataset(linear_topology(7),
                                DatasetConfig(num_samples=2, seed=seed + 50))
    normalizer = FeatureNormalizer().fit(samples)
    tensorized = [tensorize_sample(s, normalizer) for s in samples]
    return tensorized + [merge_tensorized_samples(tensorized)]


@pytest.fixture(scope="module")
def scenario_mix():
    return _tensorized_mix()


def _model_pair(model_cls, scan_mode):
    candidate = model_cls(dataclasses.replace(BASE_CONFIG, scan_mode=scan_mode))
    stacked = model_cls(dataclasses.replace(BASE_CONFIG, scan_mode="stacked"))
    return candidate, stacked


@pytest.mark.parametrize("scan_mode", ["stream", "compiled"])
@pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
class TestScanModeEquivalence:
    def test_forward_matches(self, model_cls, scan_mode, scenario_mix):
        candidate, stacked = _model_pair(model_cls, scan_mode)
        with no_grad():
            for sample in scenario_mix:
                np.testing.assert_allclose(
                    candidate(sample).data, stacked(sample).data,
                    atol=float_tolerance(), rtol=float_tolerance(1e-9, 1e-4))

    def test_gradients_match(self, model_cls, scan_mode, scenario_mix):
        """Every parameter gradient of a training loss agrees across modes."""
        candidate, stacked = _model_pair(model_cls, scan_mode)
        for sample in scenario_mix:
            grads = {}
            for label, model in ((scan_mode, candidate), ("stacked", stacked)):
                model.zero_grad()
                loss = mse_loss(model(sample), Tensor(sample.targets))
                loss.backward()
                grads[label] = {name: p.grad.copy()
                                for name, p in model.named_parameters()}
            for name, reference in grads["stacked"].items():
                scale = max(1.0, float(np.abs(reference).max()))
                np.testing.assert_allclose(
                    grads[scan_mode][name] / scale, reference / scale,
                    atol=float_tolerance(1e-8, 5e-3),
                    err_msg=f"{model_cls.__name__}.{name}")

    def test_predict_matches(self, model_cls, scan_mode, scenario_mix):
        """Inference (the no-checkpoint streaming paths) agrees too."""
        candidate, stacked = _model_pair(model_cls, scan_mode)
        for sample in scenario_mix:
            np.testing.assert_allclose(
                candidate.predict(sample), stacked.predict(sample),
                atol=float_tolerance(), rtol=float_tolerance(1e-9, 1e-4))


def test_compiled_matches_stream_directly(scenario_mix):
    """The compiled kernels replay the streaming scan's arithmetic with the
    same op order and the same stable-sigmoid formulation, so the two modes
    agree far tighter than either does with the stacked reference (only
    BLAS-shape rounding separates them)."""
    for model_cls in (RouteNet, ExtendedRouteNet):
        compiled, _ = _model_pair(model_cls, "compiled")
        stream = model_cls(dataclasses.replace(BASE_CONFIG, scan_mode="stream"))
        with no_grad():
            for sample in scenario_mix:
                np.testing.assert_allclose(
                    compiled(sample).data, stream(sample).data,
                    atol=float_tolerance(1e-12, 1e-5),
                    rtol=float_tolerance(1e-10, 1e-4))


def test_scan_mode_validated():
    with pytest.raises(ValueError):
        RouteNetConfig(scan_mode="lazy")


def test_default_scan_mode_is_compiled():
    assert RouteNetConfig().scan_mode == "compiled"
