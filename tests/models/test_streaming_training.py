"""Out-of-core training equivalence and semantics.

The streaming path (``fit(dataset_path=...)`` over a sharded store, batches
produced by a :class:`~repro.datasets.prefetch.BatchPrefetcher`) must be an
*execution* detail, never an update-semantics one: with a bucketing window
covering the dataset, a streamed epoch builds exactly the batches the
in-memory trainer pre-merges and visits them in the same RNG order, so the
parameter trajectories are **bit-identical** — in both RNN scan modes, under
both parallel backends and at any prefetch depth.  The same contract holds
for ``overlap`` mode: double-buffered broadcast pipelines the parent's
bookkeeping with worker compute but never changes a single update.
"""

import numpy as np
import pytest

from repro.datasets import (
    BatchPrefetcher,
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    iter_window_batches,
    make_batches,
    save_dataset,
)
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import ring_topology

NUM_SAMPLES = 8


@pytest.fixture(scope="module")
def samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=NUM_SAMPLES, seed=3,
                                          small_queue_fraction=0.5))


@pytest.fixture(scope="module")
def normalizer(samples):
    return FeatureNormalizer().fit(samples)


@pytest.fixture(scope="module")
def store(samples, normalizer, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("dataset") / "store")
    return save_dataset(samples, path, normalizer=normalizer, shards=3)


def _make_trainer(normalizer, scan_mode="stream", **config):
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=8, path_state_dim=8, node_state_dim=8,
        message_passing_iterations=2, seed=5, scan_mode=scan_mode))
    defaults = dict(epochs=2, learning_rate=0.005, batch_size=2, seed=5)
    defaults.update(config)
    return RouteNetTrainer(model, TrainerConfig(**defaults),
                           normalizer=FeatureNormalizer.from_dict(normalizer.to_dict()))


# ---------------------------------------------------------------------- #
# Streamed == in-memory, bit for bit
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("scan_mode", ["compiled", "stream", "stacked"])
@pytest.mark.parametrize("backend", ["serial", "process"])
def test_streamed_epoch_bit_identical_across_backends(samples, normalizer, store,
                                                      scan_mode, backend):
    """Sharded reader + prefetcher (2 workers, prefetch_depth=1) equals the
    in-memory path bit for bit, in both scan modes and both engines."""
    in_memory = _make_trainer(normalizer, scan_mode=scan_mode,
                              num_workers=2, parallel_backend=backend)
    in_memory.fit(samples)
    streamed = _make_trainer(normalizer, scan_mode=scan_mode, num_workers=2,
                             parallel_backend=backend, prefetch_depth=1)
    streamed.fit(dataset_path=store)
    assert in_memory.history.train_loss == streamed.history.train_loss
    assert np.array_equal(in_memory.model.parameters_vector(),
                          streamed.model.parameters_vector())


@pytest.mark.parametrize("prefetch_depth", [1, 3])
def test_streamed_epoch_bit_identical_serial_loop(samples, normalizer, store,
                                                  prefetch_depth):
    """The num_workers=1 (no executor) loop: any prefetch depth, same result."""
    in_memory = _make_trainer(normalizer)
    in_memory.fit(samples)
    streamed = _make_trainer(normalizer, prefetch_depth=prefetch_depth)
    streamed.fit(dataset_path=store)
    assert in_memory.history.train_loss == streamed.history.train_loss
    assert np.array_equal(in_memory.model.parameters_vector(),
                          streamed.model.parameters_vector())


def test_streamed_epoch_bit_identical_unbucketed_shuffle(samples, normalizer,
                                                         store):
    """bucket_by_length=False shuffles batch *membership* (the in-memory
    make_batches(rng=...) regime); the streamed window must do the same."""
    in_memory = _make_trainer(normalizer, bucket_by_length=False)
    in_memory.fit(samples)
    streamed = _make_trainer(normalizer, bucket_by_length=False)
    streamed.fit(dataset_path=store)
    assert in_memory.history.train_loss == streamed.history.train_loss
    assert np.array_equal(in_memory.model.parameters_vector(),
                          streamed.model.parameters_vector())


def test_streamed_epoch_bit_identical_at_batch_size_one(tmp_path):
    """batch_size=1 (the default) never buckets in the in-memory path, so
    the streamed path must not either — regression test with samples of
    *differing* max path lengths, where bucketing would reorder visits."""
    mixed = (generate_dataset(ring_topology(5),
                              DatasetConfig(num_samples=3, seed=3,
                                            small_queue_fraction=0.5))
             + generate_dataset(ring_topology(7),
                                DatasetConfig(num_samples=3, seed=4,
                                              small_queue_fraction=0.5)))
    fitted = FeatureNormalizer().fit(mixed)
    lengths = {fitted.tensorize(s).max_path_length for s in mixed}
    assert len(lengths) > 1  # bucketing would actually reorder these
    store = save_dataset(mixed, str(tmp_path / "mixed"), normalizer=fitted,
                         shards=2)
    in_memory = _make_trainer(fitted, batch_size=1)
    in_memory.fit(mixed)
    streamed = _make_trainer(fitted, batch_size=1)
    streamed.fit(dataset_path=store)
    assert in_memory.history.train_loss == streamed.history.train_loss
    assert np.array_equal(in_memory.model.parameters_vector(),
                          streamed.model.parameters_vector())


def test_streaming_uses_store_normalizer(samples, store):
    """Without an explicit normaliser the trainer adopts the manifest's."""
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=8, path_state_dim=8, node_state_dim=8,
        message_passing_iterations=2, seed=5))
    trainer = RouteNetTrainer(model, TrainerConfig(epochs=1, batch_size=2, seed=5))
    trainer.fit(dataset_path=store)
    expected = FeatureNormalizer().fit(samples)
    assert trainer.normalizer.means == expected.means


def test_small_windows_bound_live_batches_and_still_learn(samples, normalizer,
                                                          store):
    """stream_window smaller than the epoch: bucketing degrades to per-window
    but training still works and far fewer batches are ever live."""
    trainer = _make_trainer(normalizer, epochs=3, batch_size=1,
                            stream_window=2, prefetch_depth=1)
    trainer.fit(dataset_path=store)
    assert len(trainer.history.epochs) == 3
    assert all(np.isfinite(loss) for loss in trainer.history.train_loss)
    # 8 batches per epoch, but at most prefetch_depth + producer + consumer
    # merged batches alive at once.
    assert max(trainer.history.peak_live_batches) <= 4
    in_memory = _make_trainer(normalizer, epochs=1, batch_size=1)
    in_memory.fit(samples)
    assert in_memory.history.peak_live_batches[-1] == NUM_SAMPLES


def test_history_records_throughput(samples, normalizer):
    trainer = _make_trainer(normalizer)
    trainer.fit(samples)
    assert all(sps is not None and sps > 0
               for sps in trainer.history.samples_per_sec)
    assert all(peak == 4 for peak in trainer.history.peak_live_batches)
    as_dict = trainer.history.as_dict()
    assert "samples_per_sec" in as_dict and "peak_live_batches" in as_dict


def test_fit_data_source_validation(samples, normalizer, store, tmp_path):
    trainer = _make_trainer(normalizer)
    with pytest.raises(ValueError, match="exactly one data source"):
        trainer.fit()
    with pytest.raises(ValueError, match="exactly one data source"):
        trainer.fit(samples, dataset_path=store)
    # A format-1 file cannot be streamed shard by shard.
    format1 = save_dataset(samples[:2], str(tmp_path / "flat"))
    with pytest.raises(ValueError, match="sharded"):
        trainer.fit(dataset_path=format1)
    empty = save_dataset([], str(tmp_path / "empty"), shards=1)
    with pytest.raises(ValueError, match="empty"):
        trainer.fit(dataset_path=empty)


def test_streaming_checkpoint_resume_bit_exact(samples, normalizer, store,
                                               tmp_path):
    """Streamed training checkpoints/resumes as exactly as in-memory."""
    full = _make_trainer(normalizer, epochs=4)
    full.fit(dataset_path=store)
    checkpoint = str(tmp_path / "ck")
    first = _make_trainer(normalizer, epochs=2)
    first.fit(dataset_path=store, checkpoint_path=checkpoint)
    resumed = _make_trainer(normalizer, epochs=2)
    resumed.load_checkpoint(checkpoint)
    resumed.fit(dataset_path=store)
    assert full.history.train_loss == resumed.history.train_loss
    assert np.array_equal(full.model.parameters_vector(),
                          resumed.model.parameters_vector())


# ---------------------------------------------------------------------- #
# Overlap mode: pipelined, but bit-identical
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["serial", "process"])
def test_overlap_bit_identical(samples, normalizer, backend):
    plain = _make_trainer(normalizer, epochs=3, num_workers=2,
                          parallel_backend=backend)
    plain.fit(samples)
    overlapped = _make_trainer(normalizer, epochs=3, num_workers=2,
                               parallel_backend=backend, overlap=True)
    overlapped.fit(samples)
    assert plain.history.train_loss == overlapped.history.train_loss
    assert np.array_equal(plain.model.parameters_vector(),
                          overlapped.model.parameters_vector())


def test_overlap_streaming_bit_identical(samples, normalizer, store):
    plain = _make_trainer(normalizer, epochs=3, num_workers=2,
                          parallel_backend="serial")
    plain.fit(samples)
    overlapped = _make_trainer(normalizer, epochs=3, num_workers=2,
                               parallel_backend="serial", overlap=True)
    overlapped.fit(dataset_path=store)
    assert np.array_equal(plain.model.parameters_vector(),
                          overlapped.model.parameters_vector())


def test_overlap_checkpoint_resume_bit_exact(samples, normalizer, tmp_path):
    """The overlap boundary plans epoch k+1 (consuming an RNG draw) before
    the epoch-k checkpoint is written; the checkpoint must carry the
    pre-planning RNG state so a resumed run re-draws it."""
    kwargs = dict(num_workers=2, parallel_backend="serial", overlap=True)
    full = _make_trainer(normalizer, epochs=4, **kwargs)
    full.fit(samples)
    checkpoint = str(tmp_path / "ck")
    first = _make_trainer(normalizer, epochs=2, **kwargs)
    first.fit(samples, checkpoint_path=checkpoint)
    resumed = _make_trainer(normalizer, epochs=2, **kwargs)
    resumed.load_checkpoint(checkpoint)
    resumed.fit(samples)
    assert full.history.train_loss == resumed.history.train_loss
    assert np.array_equal(full.model.parameters_vector(),
                          resumed.model.parameters_vector())


def test_overlap_early_stopping_discards_inflight_group(samples, normalizer):
    """When early stopping fires, the pre-submitted next-epoch group must be
    discarded: the stopped overlapped run matches the non-overlapped one."""
    kwargs = dict(epochs=6, num_workers=2, parallel_backend="serial",
                  early_stopping_patience=1)
    plain = _make_trainer(normalizer, **kwargs)
    plain.fit(samples, val_samples=samples[:2])
    overlapped = _make_trainer(normalizer, overlap=True, **kwargs)
    overlapped.fit(samples, val_samples=samples[:2])
    assert plain.history.epochs == overlapped.history.epochs
    assert np.array_equal(plain.model.parameters_vector(),
                          overlapped.model.parameters_vector())


def test_overlap_ignored_without_workers(samples, normalizer):
    """overlap=True with num_workers=1 is a documented no-op."""
    trainer = _make_trainer(normalizer, overlap=True)
    trainer.fit(samples)
    assert len(trainer.history.epochs) == 2


# ---------------------------------------------------------------------- #
# Prefetcher unit behaviour
# ---------------------------------------------------------------------- #
def test_window_batches_match_make_batches(samples, normalizer):
    """One window covering the dataset builds exactly the in-memory batches
    (same stable length-bucketed membership, same member order)."""
    items = [normalizer.tensorize(s) for s in samples]
    expected = make_batches(items, 2, bucket_by_length=True)
    streamed = list(iter_window_batches(samples, normalizer, batch_size=2,
                                        window_batches=64))
    assert len(streamed) == len(expected)
    for a, b in zip(streamed, expected):
        np.testing.assert_array_equal(a.targets, b.targets)
        np.testing.assert_array_equal(a.link_sequences, b.link_sequences)
        np.testing.assert_array_equal(a.sample_path_offsets, b.sample_path_offsets)


def test_prefetcher_propagates_errors(samples):
    unfitted = FeatureNormalizer()  # tensorising with it raises RuntimeError
    prefetcher = BatchPrefetcher(iter(samples), unfitted, batch_size=2)
    with pytest.raises(RuntimeError, match="fitted"):
        list(prefetcher)


def test_prefetcher_reraises_promptly_past_queued_batches(samples, normalizer):
    """A dead producer surfaces its error at the *next* step, even with
    intact batches still queued ahead of the failure — a failed epoch must
    not hand out the rest of its queue first."""
    def poisoned():
        yield samples[0]
        yield samples[1]
        raise RuntimeError("poisoned source")

    prefetcher = BatchPrefetcher(poisoned(), normalizer, batch_size=1,
                                 window_batches=1, prefetch_depth=4)
    # Deterministic setup: let the producer queue both good batches, hit the
    # error and exit before the consumer touches the queue.
    prefetcher._thread.join(timeout=10.0)
    assert not prefetcher._thread.is_alive()
    assert prefetcher._queue.qsize() > 1  # good batches ahead of the error
    with pytest.raises(RuntimeError, match="poisoned"):
        next(iter(prefetcher))
    assert prefetcher._queue.qsize() == 0  # drained on the way out
    with pytest.raises(StopIteration):
        next(iter(prefetcher))


def test_prefetcher_context_manager_joins_on_consumer_error(samples, normalizer):
    """A consumer raising mid-epoch inside ``with`` still stops and joins
    the producer thread on the way out."""
    with pytest.raises(RuntimeError, match="consumer failed"):
        with BatchPrefetcher(iter(samples), normalizer, batch_size=1,
                             prefetch_depth=1) as prefetcher:
            next(iter(prefetcher))
            raise RuntimeError("consumer failed")
    assert not prefetcher._thread.is_alive()
    with pytest.raises(StopIteration):
        next(iter(prefetcher))


def test_prefetcher_close_is_safe_midway(samples, normalizer):
    prefetcher = BatchPrefetcher(iter(samples), normalizer, batch_size=1,
                                 prefetch_depth=1)
    first = next(iter(prefetcher))
    assert first.num_paths > 0
    prefetcher.close()
    # After close() the producer thread is gone — nothing can race the RNG.
    assert not prefetcher._thread.is_alive()
    prefetcher.close()  # idempotent
    with pytest.raises(StopIteration):
        next(iter(prefetcher))


def test_prefetcher_tracks_live_bytes(samples, normalizer):
    prefetcher = BatchPrefetcher(iter(samples), normalizer, batch_size=2,
                                 prefetch_depth=1)
    batches = list(prefetcher)
    total_bytes = sum(batch.nbytes for batch in batches)
    assert prefetcher.peak_live_bytes > 0
    # The bound: far less than the whole epoch's merged batches at once.
    assert prefetcher.peak_live_bytes < total_bytes


def test_config_validation():
    with pytest.raises(ValueError):
        TrainerConfig(prefetch_depth=0)
    with pytest.raises(ValueError):
        TrainerConfig(stream_window=0)


def test_stream_window_mismatch_blocks_resume(samples, normalizer, tmp_path):
    """stream_window decides streamed batch membership, so resuming under a
    different value must be refused like batch_size would be."""
    checkpoint = str(tmp_path / "ck")
    trainer = _make_trainer(normalizer, epochs=1, stream_window=8)
    trainer.fit(samples, checkpoint_path=checkpoint)
    other = _make_trainer(normalizer, epochs=1, stream_window=4)
    with pytest.raises(ValueError, match="stream_window"):
        other.load_checkpoint(checkpoint)
