"""Float32 and float64 training/evaluation must agree within tolerance.

The dtype-configurable stack promises that float32 is a *precision* choice,
not a different model: identical seeds give weights equal up to rounding,
so one epoch of training, the evaluation losses and the paper-style metrics
must coincide between precisions far more tightly than any real accuracy
signal.  These tests pin that contract for both architectures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DatasetConfig, generate_dataset
from repro.models import (
    ExtendedRouteNet,
    RouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    evaluate_model,
)
from repro.topology import ring_topology

MODEL_CLASSES = {"original": RouteNet, "extended": ExtendedRouteNet}


def _run(model_name: str, dtype: str):
    samples = generate_dataset(ring_topology(5), DatasetConfig(num_samples=10, seed=3))
    config = RouteNetConfig(link_state_dim=10, path_state_dim=10, node_state_dim=10,
                            message_passing_iterations=3, seed=2, dtype=dtype)
    model = MODEL_CLASSES[model_name](config)
    trainer = RouteNetTrainer(model, TrainerConfig(epochs=1, batch_size=2, dtype=dtype,
                                                   learning_rate=0.003, seed=2))
    history = trainer.fit(samples[:8], val_samples=samples[8:])
    eval_loss = trainer.evaluate_loss(trainer.prepare(samples[8:]))
    metrics = evaluate_model(model, samples[8:], trainer.normalizer, dtype=dtype)
    return model, history, eval_loss, metrics


@pytest.fixture(scope="module", params=sorted(MODEL_CLASSES))
def both_precisions(request):
    """One (float64, float32) training run pair per architecture."""
    return (_run(request.param, "float64"), _run(request.param, "float32"))


@pytest.mark.parametrize("model_name", sorted(MODEL_CLASSES))
def test_parameters_start_equal_up_to_rounding(model_name):
    config = dict(link_state_dim=10, path_state_dim=10, node_state_dim=10,
                  message_passing_iterations=3, seed=2)
    model64 = MODEL_CLASSES[model_name](RouteNetConfig(dtype="float64", **config))
    model32 = MODEL_CLASSES[model_name](RouteNetConfig(dtype="float32", **config))
    for (name64, p64), (name32, p32) in zip(model64.named_parameters(),
                                            model32.named_parameters()):
        assert name64 == name32
        assert p64.data.dtype == np.float64
        assert p32.data.dtype == np.float32
        # Same rng stream, cast once: float32 weights are the rounded float64 ones.
        np.testing.assert_array_equal(p32.data, p64.data.astype(np.float32))


def test_fit_one_epoch_agrees(both_precisions):
    (_, history64, *_), (_, history32, *_) = both_precisions
    assert history32.train_loss[0] == pytest.approx(history64.train_loss[0], rel=1e-4)
    assert history32.val_loss[0] == pytest.approx(history64.val_loss[0], rel=1e-4)


def test_evaluate_loss_matches(both_precisions):
    (_, _, loss64, _), (_, _, loss32, _) = both_precisions
    assert loss32 == pytest.approx(loss64, rel=1e-4)


def test_evaluate_model_matches(both_precisions):
    (*_, metrics64), (*_, metrics32) = both_precisions
    for key in ("mean_relative_error", "median_relative_error",
                "mape_percent", "rmse", "pearson"):
        assert metrics32[key] == pytest.approx(metrics64[key], rel=1e-4), key
    np.testing.assert_allclose(metrics32["relative_errors"],
                               metrics64["relative_errors"], atol=1e-5)
    assert metrics32["num_paths"] == metrics64["num_paths"]
    # Metric arithmetic stays float64 even for the float32 model.
    assert metrics32["relative_errors"].dtype == np.float64
