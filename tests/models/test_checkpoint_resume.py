"""Exact training resume: trainer checkpoints round-trip everything.

The headline bugfix behind these tests: ``Optimizer.state_dict`` used to
persist only ``step_count`` and silently drop the Adam moment buffers, so a
resumed run applied the bias correction ``1/(1 - beta**step_count)`` to
freshly zeroed moments — quietly wrong updates.  A full trainer checkpoint
(weights + optimiser moments + normaliser + history + RNG state) must make
"train N epochs straight" and "train k, checkpoint, reload, train N - k"
produce bit-identical parameters and the same recorded history.
"""

import os

import numpy as np
import pytest

from repro.datasets import DatasetConfig, generate_dataset
from repro.models import ExtendedRouteNet, RouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import ring_topology

TOTAL_EPOCHS = 6
SPLIT_EPOCHS = 2


@pytest.fixture(scope="module")
def samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=6, seed=3,
                                          small_queue_fraction=0.5))


def _model_config():
    return RouteNetConfig(link_state_dim=8, path_state_dim=8, node_state_dim=8,
                          message_passing_iterations=2, seed=5)


def _trainer(epochs: int, **overrides) -> RouteNetTrainer:
    config = dict(epochs=epochs, learning_rate=0.005, batch_size=2, seed=5)
    config.update(overrides)
    return RouteNetTrainer(ExtendedRouteNet(_model_config()), TrainerConfig(**config))


@pytest.mark.parametrize("batch_size", [1, 2])
def test_resume_is_bit_exact(samples, tmp_path, batch_size):
    """Straight N epochs == k epochs + checkpoint + reload + (N - k) epochs."""
    straight = _trainer(TOTAL_EPOCHS, batch_size=batch_size)
    straight.fit(samples)

    first_leg = _trainer(SPLIT_EPOCHS, batch_size=batch_size)
    first_leg.fit(samples)
    path = first_leg.save_checkpoint(str(tmp_path / "ckpt"))

    second_leg = _trainer(TOTAL_EPOCHS - SPLIT_EPOCHS, batch_size=batch_size)
    second_leg.load_checkpoint(path)
    second_leg.fit(samples)

    assert np.array_equal(straight.model.parameters_vector(),
                          second_leg.model.parameters_vector())
    assert second_leg.history.epochs == straight.history.epochs
    assert second_leg.history.train_loss == straight.history.train_loss


def test_resume_with_validation_split(samples, tmp_path):
    train, val = samples[:4], samples[4:]
    straight = _trainer(TOTAL_EPOCHS)
    straight.fit(train, val_samples=val)

    first_leg = _trainer(SPLIT_EPOCHS)
    first_leg.fit(train, val_samples=val)
    path = first_leg.save_checkpoint(str(tmp_path / "ckpt"))
    second_leg = _trainer(TOTAL_EPOCHS - SPLIT_EPOCHS)
    second_leg.load_checkpoint(path)
    second_leg.fit(train, val_samples=val)

    assert np.array_equal(straight.model.parameters_vector(),
                          second_leg.model.parameters_vector())
    assert second_leg.history.val_loss == straight.history.val_loss


def test_checkpoint_restores_optimizer_moments(samples, tmp_path):
    trainer = _trainer(SPLIT_EPOCHS)
    trainer.fit(samples)
    path = trainer.save_checkpoint(str(tmp_path / "ckpt"))

    restored = _trainer(1)
    assert np.abs(restored.optimizer._first_moment[0]).max() == 0
    restored.load_checkpoint(path)
    assert restored.optimizer.step_count == trainer.optimizer.step_count
    for fresh, original in zip(restored.optimizer._first_moment,
                               trainer.optimizer._first_moment):
        assert np.array_equal(fresh, original)
    for fresh, original in zip(restored.optimizer._second_moment,
                               trainer.optimizer._second_moment):
        assert np.array_equal(fresh, original)


def test_checkpoint_restores_normalizer_history_and_rng(samples, tmp_path):
    trainer = _trainer(SPLIT_EPOCHS)
    trainer.fit(samples)
    path = trainer.save_checkpoint(str(tmp_path / "ckpt"))

    restored = _trainer(1)
    metadata = restored.load_checkpoint(path)
    assert metadata["model_class"] == "ExtendedRouteNet"
    assert restored.normalizer is not None
    assert restored.normalizer.means == trainer.normalizer.means
    assert restored.normalizer.stds == trainer.normalizer.stds
    assert restored.history.epochs == trainer.history.epochs
    assert restored.history.train_loss == trainer.history.train_loss
    assert (restored._rng.bit_generator.state
            == trainer._rng.bit_generator.state)
    # The .npz and its sidecar both exist.
    assert os.path.exists(path)
    assert os.path.exists(path[: -len(".npz")] + ".json")


def test_mismatched_model_class_raises(samples, tmp_path):
    trainer = _trainer(1)
    trainer.fit(samples)
    path = trainer.save_checkpoint(str(tmp_path / "ckpt"))
    other = RouteNetTrainer(RouteNet(_model_config()),
                            TrainerConfig(epochs=1, seed=5))
    with pytest.raises(ValueError, match="ExtendedRouteNet"):
        other.load_checkpoint(path)


def test_mismatched_training_setup_raises(samples, tmp_path):
    trainer = _trainer(1)
    trainer.fit(samples)
    path = trainer.save_checkpoint(str(tmp_path / "ckpt"))
    with pytest.raises(ValueError, match="loss"):
        _trainer(1, loss="huber").load_checkpoint(path)
    with pytest.raises(ValueError, match="batch_size"):
        _trainer(1, batch_size=4).load_checkpoint(path)
    # Epochs and learning rate are deliberate resume knobs: no error.
    _trainer(3, learning_rate=0.001).load_checkpoint(path)


def test_fit_checkpoint_path_saves_every_epoch(samples, tmp_path):
    """fit(checkpoint_path=...) makes interrupted runs resumable: after the
    run the checkpoint covers the last completed epoch."""
    path = str(tmp_path / "rolling.npz")
    trainer = _trainer(3)
    trainer.fit(samples, checkpoint_path=path)
    restored = _trainer(1)
    restored.load_checkpoint(path)
    assert restored.history.epochs == [1, 2, 3]
    assert np.array_equal(restored.model.parameters_vector(),
                          trainer.model.parameters_vector())


def test_missing_checkpoint_raises(tmp_path):
    trainer = _trainer(1)
    with pytest.raises(FileNotFoundError):
        trainer.load_checkpoint(str(tmp_path / "nope"))


def test_trainer_config_validation():
    with pytest.raises(ValueError, match="early_stopping_patience"):
        TrainerConfig(early_stopping_patience=0)
    with pytest.raises(ValueError, match="early_stopping_patience"):
        TrainerConfig(early_stopping_patience=-3)
    TrainerConfig(early_stopping_patience=None)
    TrainerConfig(early_stopping_patience=1)
    with pytest.raises(ValueError, match="gradient_clip_norm"):
        TrainerConfig(gradient_clip_norm=-0.5)
    TrainerConfig(gradient_clip_norm=0.0)
    with pytest.raises(ValueError, match="num_workers"):
        TrainerConfig(num_workers=0)
    with pytest.raises(ValueError, match="parallel_backend"):
        TrainerConfig(parallel_backend="threads")
