"""Batched training: batch/single equivalence and trainer integration.

The disjoint-union mini-batching of :mod:`repro.datasets.batching` must be
*semantically invisible*: a forward pass over a merged batch has to produce
exactly the per-sample predictions, concatenated, and the weighted
:meth:`RouteNetTrainer.evaluate_loss` has to report the same number whether
the validation scenarios are evaluated one by one or merged into batches of
unequal path counts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    make_batches,
    merge_tensorized_samples,
    tensorize_sample,
)
from repro.models import (
    ExtendedRouteNet,
    RouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
)
from repro.models.message_passing import build_index
from repro.nn.tensor import no_grad
from repro.topology import linear_topology, ring_topology

from tests.support import float_tolerance

SMALL_CONFIG = RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                              message_passing_iterations=2, readout_hidden_sizes=(8,),
                              seed=0)


def _mixed_tensorized(seed: int):
    """Scenarios from two topologies → unequal path counts per sample."""
    samples = generate_dataset(ring_topology(5), DatasetConfig(num_samples=4, seed=seed))
    samples += generate_dataset(linear_topology(7),
                                DatasetConfig(num_samples=3, seed=seed + 100))
    normalizer = FeatureNormalizer().fit(samples)
    return samples, [tensorize_sample(s, normalizer) for s in samples], normalizer


#: (model, tensorized scenarios, per-sample predictions) per model class,
#: shared across hypothesis examples so each draw only pays for one merge.
_EQUIV_CACHE = {}


def _equivalence_fixture(model_cls):
    if model_cls not in _EQUIV_CACHE:
        _, tensorized, _ = _mixed_tensorized(seed=20)
        model = model_cls(SMALL_CONFIG)
        with no_grad():
            per_sample = [model(t).data.copy() for t in tensorized]
        _EQUIV_CACHE[model_cls] = (model, tensorized, per_sample)
    return _EQUIV_CACHE[model_cls]


class TestBatchSingleEquivalence:
    """Property: merged-batch forward == concatenated per-sample forwards."""

    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    @pytest.mark.parametrize("batch_size", [2, 3, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_forward_equivalence(self, model_cls, batch_size, seed):
        _, tensorized, _ = _mixed_tensorized(seed)
        model = model_cls(SMALL_CONFIG)
        with no_grad():
            separate = [model(t).data.copy() for t in tensorized]
            for start in range(0, len(tensorized), batch_size):
                group = tensorized[start:start + batch_size]
                merged = merge_tensorized_samples(group)
                batched = model(merged).data
                np.testing.assert_allclose(
                    batched, np.concatenate(separate[start:start + batch_size]),
                    atol=float_tolerance())
                # Unmerging the batched predictions recovers per-scenario rows.
                for chunk, expected in zip(merged.unmerge(batched),
                                           separate[start:start + batch_size]):
                    np.testing.assert_allclose(chunk, expected, atol=float_tolerance())

    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    @settings(max_examples=15, deadline=None)
    @given(indices=st.lists(st.integers(min_value=0, max_value=6),
                            min_size=1, max_size=5))
    def test_property_arbitrary_merges_match_concatenation(self, model_cls, indices):
        """Any multiset of scenarios, merged, predicts exactly like unmerged."""
        model, tensorized, per_sample = _equivalence_fixture(model_cls)
        group = [tensorized[i] for i in indices]
        merged = merge_tensorized_samples(group)
        with no_grad():
            batched = model(merged).data
        np.testing.assert_allclose(
            batched, np.concatenate([per_sample[i] for i in indices]),
            atol=float_tolerance())

    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    def test_shuffled_batches_cover_all_paths(self, model_cls, seed=3):
        _, tensorized, _ = _mixed_tensorized(seed)
        model = model_cls(SMALL_CONFIG)
        batches = make_batches(tensorized, 2, rng=np.random.default_rng(seed))
        batched_targets = np.concatenate([b.targets for b in batches])
        assert batched_targets.size == sum(t.num_paths for t in tensorized)
        with no_grad():
            for batch in batches:
                assert model(batch).shape == (batch.num_paths,)


class TestBatchedEvaluateLoss:
    def test_batched_and_unbatched_agree(self):
        """Weighted evaluate_loss is invariant to how paths are batched."""
        _, tensorized, normalizer = _mixed_tensorized(seed=5)
        trainer = RouteNetTrainer(ExtendedRouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=1, seed=5),
                                  normalizer=normalizer)
        unbatched = trainer.evaluate_loss(tensorized)
        for batch_size in (2, 3, len(tensorized)):
            batched = trainer.evaluate_loss(make_batches(tensorized, batch_size))
            assert batched == pytest.approx(unbatched, abs=float_tolerance())

    def test_weighting_differs_from_naive_mean(self):
        """With unequal path counts the naive mean over items is biased."""
        _, tensorized, normalizer = _mixed_tensorized(seed=6)
        trainer = RouteNetTrainer(RouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=1, seed=6),
                                  normalizer=normalizer)
        batches = make_batches(tensorized, 3)
        assert len({b.num_paths for b in batches}) > 1
        per_item = []
        with no_grad():
            for batch in batches:
                predictions = trainer.model(batch)
                per_item.append(float(trainer._loss(predictions, batch.targets).item()))
        weighted = trainer.evaluate_loss(batches)
        expected = (np.average(per_item, weights=[b.num_paths for b in batches]))
        assert weighted == pytest.approx(expected, abs=1e-12)


class TestBatchedFit:
    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)

    def test_fit_with_batches_learns(self):
        samples = generate_dataset(ring_topology(5), DatasetConfig(num_samples=8, seed=7))
        trainer = RouteNetTrainer(ExtendedRouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=5, learning_rate=0.01,
                                                batch_size=4, seed=7))
        history = trainer.fit(samples[:6], val_samples=samples[6:])
        assert len(history.epochs) == 5
        assert history.train_loss[-1] < history.train_loss[0]
        assert all(np.isfinite(history.val_loss))

    def test_fit_without_shuffle_uses_static_batches(self):
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=5, seed=8))
        trainer = RouteNetTrainer(RouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=3, batch_size=2,
                                                shuffle=False, seed=8))
        history = trainer.fit(samples)
        assert len(history.epochs) == 3
        assert np.isfinite(history.train_loss).all()

    def test_bucketed_fit_premerges_batches_once(self, monkeypatch):
        """With bucketing (the default) fit merges batches once, not per epoch."""
        import repro.models.trainer as trainer_module

        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=6, seed=12))
        calls = []
        real_make_batches = trainer_module.make_batches

        def counting_make_batches(*args, **kwargs):
            calls.append(kwargs)
            return real_make_batches(*args, **kwargs)

        monkeypatch.setattr(trainer_module, "make_batches", counting_make_batches)
        trainer = RouteNetTrainer(RouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=3, batch_size=2, seed=12))
        history = trainer.fit(samples)
        assert len(history.epochs) == 3
        assert len(calls) == 1
        assert calls[0].get("bucket_by_length") is True

    def test_unbucketed_fit_remerges_every_epoch(self, monkeypatch):
        """bucket_by_length=False restores the per-epoch shuffle-and-merge."""
        import repro.models.trainer as trainer_module

        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=6, seed=13))
        calls = []
        real_make_batches = trainer_module.make_batches

        def counting_make_batches(*args, **kwargs):
            calls.append(kwargs)
            return real_make_batches(*args, **kwargs)

        monkeypatch.setattr(trainer_module, "make_batches", counting_make_batches)
        trainer = RouteNetTrainer(RouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=3, batch_size=2,
                                                bucket_by_length=False, seed=13))
        trainer.fit(samples)
        assert len(calls) == 3

    def test_bucketed_epochs_cover_every_sample(self):
        """Each pre-merged bucketed epoch steps over every scenario exactly once."""
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=5, seed=14))
        trainer = RouteNetTrainer(RouteNet(SMALL_CONFIG),
                                  TrainerConfig(epochs=2, batch_size=2, seed=14))
        stepped: list = []
        original_train_step = trainer.train_step
        trainer.train_step = lambda batch: (stepped.append(batch),
                                            original_train_step(batch))[1]
        trainer.fit(samples)
        total_paths = sum(t.num_paths for t in trainer.prepare(samples))
        batches_per_epoch = 3  # ceil(5 / 2)
        assert len(stepped) == 2 * batches_per_epoch
        for epoch_batches in (stepped[:batches_per_epoch], stepped[batches_per_epoch:]):
            assert sum(b.num_merged_samples for b in epoch_batches) == len(samples)
            assert sum(b.num_paths for b in epoch_batches) == total_paths

    def test_batch_size_one_matches_seed_behaviour(self):
        """batch_size=1 must reproduce the historical per-sample training.

        Equal path counts per scenario (one topology) so the per-path
        weighting of the reported epoch loss is also a no-op here; the
        optimisation steps themselves are identical regardless.
        """
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=6, seed=9))

        def run(config):
            trainer = RouteNetTrainer(RouteNet(SMALL_CONFIG), config)
            return trainer.fit(samples).train_loss

        base = run(TrainerConfig(epochs=3, learning_rate=0.01, seed=9))
        explicit = run(TrainerConfig(epochs=3, learning_rate=0.01, seed=9, batch_size=1))
        np.testing.assert_allclose(base, explicit, rtol=0, atol=0)


class TestIndexCaching:
    def test_build_index_memoised_per_sample(self):
        _, tensorized, _ = _mixed_tensorized(seed=10)
        sample = tensorized[0]
        assert build_index(sample) is build_index(sample)

    def test_copies_do_not_share_cached_index(self):
        _, tensorized, _ = _mixed_tensorized(seed=11)
        sample = tensorized[0]
        index = build_index(sample)
        copied = sample.copy()
        assert build_index(copied) is not index
