"""Structural invariance tests for the RouteNet family.

A GNN's defining property is that its output depends on the *graph
structure*, not on arbitrary identifiers.  These tests relabel the nodes of
a scenario with a random permutation and check that both models produce the
same per-pair predictions — the property that underlies the paper's claim of
generalisation to unseen topologies.
"""

import numpy as np
import pytest

from repro.datasets import AnalyticGroundTruth, FeatureNormalizer, tensorize_sample
from repro.models import ExtendedRouteNet, RouteNet, RouteNetConfig
from repro.routing import RoutingScheme, shortest_path_routing
from repro.topology import Topology, ring_topology
from repro.traffic import TrafficMatrix, uniform_traffic

from tests.support import float_tolerance

CONFIG = RouteNetConfig(link_state_dim=8, path_state_dim=8, node_state_dim=8,
                        message_passing_iterations=3, seed=2)


def _base_scenario(seed=0):
    topology = ring_topology(6)
    rng = np.random.default_rng(seed)
    for node in topology.nodes():
        topology.set_queue_size(node, int(rng.choice([1, 32])))
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(6, 1e5, 3e5, rng=rng)
    sample = AnalyticGroundTruth(noise_std=0.0).generate(topology, routing, traffic)
    return sample


def _permute_scenario(sample, permutation):
    """Relabel every node of a scenario through ``permutation``."""
    old_topology = sample.topology
    mapping = {old: int(new) for old, new in zip(old_topology.nodes(), permutation)}

    new_topology = Topology(name=old_topology.name + "-permuted")
    for old_node in old_topology.nodes():
        spec = old_topology.node_spec(old_node)
        new_topology.add_node(mapping[old_node], queue_size=spec.queue_size,
                              scheduling=spec.scheduling)
    # Keep the link insertion order so link indices correspond one-to-one.
    for spec in old_topology.links():
        new_topology.add_link(mapping[spec.source], mapping[spec.target],
                              capacity=spec.capacity,
                              propagation_delay=spec.propagation_delay)

    new_paths = {}
    for (source, destination), path in sample.routing.items():
        new_paths[(mapping[source], mapping[destination])] = [mapping[n] for n in path]
    new_routing = RoutingScheme(new_topology, new_paths)

    demands = np.zeros((old_topology.num_nodes, old_topology.num_nodes))
    for source, destination, value in sample.traffic.pairs():
        demands[mapping[source], mapping[destination]] = value
    new_traffic = TrafficMatrix(demands)

    new_sample = AnalyticGroundTruth(noise_std=0.0).generate(
        new_topology, new_routing, new_traffic)
    return new_sample, mapping


@pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
def test_predictions_invariant_to_node_relabelling(model_cls):
    sample = _base_scenario(seed=1)
    permutation = np.random.default_rng(9).permutation(sample.topology.num_nodes)
    permuted_sample, mapping = _permute_scenario(sample, permutation)

    # One shared normaliser so both scenarios are scaled identically.
    normalizer = FeatureNormalizer().fit([sample])
    model = model_cls(CONFIG)
    original = model.predict(tensorize_sample(sample, normalizer))
    permuted = model.predict(tensorize_sample(permuted_sample, normalizer))

    original_pairs = sample.pair_order
    permuted_pairs = permuted_sample.pair_order
    for row, (source, destination) in enumerate(original_pairs):
        mapped_pair = (mapping[source], mapping[destination])
        permuted_row = permuted_pairs.index(mapped_pair)
        assert permuted[permuted_row] == pytest.approx(
            original[row], abs=float_tolerance())


def test_ground_truth_also_invariant_to_relabelling():
    """Sanity check of the harness itself: the analytic generator commutes
    with node relabelling, so the targets (not only the predictions) match."""
    sample = _base_scenario(seed=4)
    permutation = np.random.default_rng(10).permutation(sample.topology.num_nodes)
    permuted_sample, mapping = _permute_scenario(sample, permutation)
    for row, (source, destination) in enumerate(sample.pair_order):
        mapped_pair = (mapping[source], mapping[destination])
        permuted_row = permuted_sample.pair_order.index(mapped_pair)
        assert permuted_sample.delays[permuted_row] == pytest.approx(
            sample.delays[row], rel=1e-9)


@pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
def test_predictions_independent_of_unused_links(model_cls):
    """Links that no path traverses must not influence the predictions."""
    topology = ring_topology(5)
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(5, 1e5, 2e5, rng=np.random.default_rng(3))
    sample = AnalyticGroundTruth(noise_std=0.0).generate(topology, routing, traffic)

    # Same scenario, but with an extra chord link that no routed path uses.
    extended_topology = topology.copy()
    extended_topology.add_link(0, 2, capacity=5e6)
    extended_routing = RoutingScheme(extended_topology,
                                     {pair: path for pair, path in sample.routing.items()})
    extended_sample = AnalyticGroundTruth(noise_std=0.0).generate(
        extended_topology, extended_routing, sample.traffic)

    normalizer = FeatureNormalizer().fit([sample])
    model = model_cls(CONFIG)
    base = model.predict(tensorize_sample(sample, normalizer))
    with_chord = model.predict(tensorize_sample(extended_sample, normalizer))
    np.testing.assert_allclose(with_chord, base, atol=float_tolerance())
