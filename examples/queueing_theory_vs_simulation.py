"""Why GNN models? Queueing theory vs packet-level simulation on mixed queues.

The paper's introduction argues that queueing theory "often fail[s] to
provide accurate models for complex real-world scenarios" while packet-level
simulation is accurate but expensive.  This example quantifies both claims
on a single congested NSFNET scenario with mixed queue sizes:

* ground truth comes from the packet-level discrete-event simulator;
* the M/M/1 model (blind to queue sizes, like the original RouteNet inputs)
  and the M/M/1/K model (queue-size aware) predict the same delays
  analytically;
* the run times of simulation vs analytic evaluation are compared.

Run with::

    python examples/queueing_theory_vs_simulation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import MM1KModel, MM1Model
from repro.nn.metrics import mean_relative_error
from repro.routing import shortest_path_routing
from repro.simulator import SimulationConfig, simulate_network
from repro.topology import nsfnet_topology
from repro.topology.generators import assign_queue_sizes
from repro.traffic import scaled_to_utilization, uniform_traffic


def main() -> None:
    rng = np.random.default_rng(7)
    topology = assign_queue_sizes(nsfnet_topology(capacity=2e6), 0.5, rng=rng)
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(14, 0.5, 1.5, rng=rng)
    traffic = scaled_to_utilization(traffic, routing, 0.8)
    pair_order = routing.pairs()

    small_queues = sum(1 for size in topology.queue_sizes().values() if size == 1)
    print(f"Scenario: NSFNET, {small_queues}/14 devices limited to 1-packet buffers, "
          f"peak utilisation 0.8\n")

    # Ground truth: packet-level simulation.
    start = time.perf_counter()
    result = simulate_network(topology, routing, traffic,
                              SimulationConfig(duration=20.0, warmup=2.0, seed=1))
    simulation_seconds = time.perf_counter() - start
    measured = result.delays_vector(pair_order)
    valid = np.isfinite(measured)

    # Analytic estimates.
    start = time.perf_counter()
    mm1 = MM1Model().predict_delays(topology, routing, traffic)
    mm1_seconds = time.perf_counter() - start
    start = time.perf_counter()
    mm1k = MM1KModel().predict_delays(topology, routing, traffic)
    mm1k_seconds = time.perf_counter() - start

    finite_mm1 = np.isfinite(mm1) & valid
    print(f"packet-level simulation : {simulation_seconds:6.2f} s "
          f"({result.total_packets_generated} packets simulated)")
    print(f"M/M/1 analytic model    : {mm1_seconds * 1e3:6.2f} ms, "
          f"mean relative error {mean_relative_error(mm1[finite_mm1], measured[finite_mm1]):.3f}")
    print(f"M/M/1/K analytic model  : {mm1k_seconds * 1e3:6.2f} ms, "
          f"mean relative error {mean_relative_error(mm1k[valid], measured[valid]):.3f}")

    print("\nTakeaway: ignoring queue sizes (M/M/1) inflates the error dramatically on")
    print("scenarios with heterogeneous devices — the same information gap the original")
    print("RouteNet suffers from and the extended architecture closes.")


if __name__ == "__main__":
    main()
