"""Quickstart: train an Extended RouteNet delay model in a couple of minutes.

The script generates a small dataset of NSFNET scenarios with mixed queue
sizes, trains the Extended RouteNet on it, and prints the accuracy of the
delay predictions on held-out scenarios.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DatasetConfig,
    ExtendedRouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    generate_dataset,
    nsfnet_topology,
    train_val_test_split,
)
from repro.models import evaluate_model


def main() -> None:
    # 1. Generate scenarios: NSFNET with half the devices limited to 1-packet
    #    buffers, traffic swept between 35% and 80% peak utilisation.
    topology = nsfnet_topology()
    config = DatasetConfig(num_samples=30, small_queue_fraction=0.5,
                           utilization_range=(0.35, 0.8), seed=1)
    samples = generate_dataset(topology, config)
    train, val, test = train_val_test_split(samples, 0.7, 0.15, seed=1)
    print(f"generated {len(samples)} samples "
          f"({len(train)} train / {len(val)} val / {len(test)} test), "
          f"{samples[0].num_paths} paths each")

    # 2. Train the Extended RouteNet (the paper's model with a node entity).
    #    batch_size=4 merges four scenarios into each optimisation step,
    #    which amortises the per-step overhead (see repro.datasets.batching).
    #    dtype="float32" runs the whole autograd stack in single precision —
    #    about half the training memory and noticeably faster on large merged
    #    batches, with predictions matching float64 to ~4 decimals (drop the
    #    argument, or pass "float64", for full precision; the repro-net CLI
    #    exposes the same switch as --dtype).
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=16, path_state_dim=16, node_state_dim=16,
        message_passing_iterations=4, seed=1, dtype="float32"))
    trainer = RouteNetTrainer(model, TrainerConfig(epochs=10, learning_rate=0.003,
                                                   batch_size=4, dtype="float32",
                                                   seed=1, log_every=1))
    trainer.fit(train, val_samples=val)

    # 3. Evaluate on unseen scenarios.
    metrics = evaluate_model(model, test, trainer.normalizer)
    print("\nHeld-out evaluation")
    print(f"  paths evaluated      : {metrics['num_paths']}")
    print(f"  mean relative error  : {metrics['mean_relative_error']:.3f}")
    print(f"  median relative error: {metrics['median_relative_error']:.3f}")
    print(f"  Pearson correlation  : {metrics['pearson']:.3f}")

    # 4. Predict the delays of one concrete scenario.
    sample = test[0]
    predicted = trainer.predict_delays(sample)
    worst = int(np.argmax(np.abs(predicted - sample.delays) / sample.delays))
    src, dst = sample.pair_order[worst]
    print("\nExample predictions on one scenario:")
    for row in range(0, sample.num_paths, max(1, sample.num_paths // 5)):
        s, d = sample.pair_order[row]
        print(f"  path {s:2d}->{d:2d}: predicted {predicted[row] * 1e3:7.3f} ms, "
              f"measured {sample.delays[row] * 1e3:7.3f} ms")
    print(f"  (largest relative error on path {src}->{dst})")


if __name__ == "__main__":
    main()
