"""Reproduce Figure 2 of the paper (scaled down).

Trains the original RouteNet and the Extended RouteNet on GEANT2 scenarios
with mixed queue sizes, then evaluates both on held-out GEANT2 scenarios and
on NSFNET scenarios never seen during training, and prints the CDF of the
relative error of the delay predictions — the four curves of Fig. 2.

Run with::

    python examples/reproduce_fig2.py             # default scaled-down sizes
    python examples/reproduce_fig2.py --fast      # smoke-test sizes
"""

from __future__ import annotations

import argparse

from repro.pipeline import run_fig2_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="use very small sizes (a couple of minutes)")
    parser.add_argument("--train-samples", type=int, default=50)
    parser.add_argument("--eval-samples", type=int, default=20)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--batch-size", type=int, default=1,
                        help="scenarios merged into one optimisation step "
                             "(1 = the seed reproduction's step sequence)")
    parser.add_argument("--state-dim", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.fast:
        args.train_samples, args.eval_samples, args.epochs, args.state_dim = 12, 5, 4, 8

    print("Paper setting: train on GEANT2 (400k samples), evaluate on GEANT2 (100k) "
          "and NSFNET (100k).")
    print(f"This run     : train on GEANT2 ({args.train_samples} samples), evaluate on "
          f"GEANT2 and NSFNET ({args.eval_samples} samples each).\n")

    result = run_fig2_experiment(
        num_train_samples=args.train_samples,
        num_eval_samples=args.eval_samples,
        epochs=args.epochs,
        batch_size=args.batch_size,
        state_dim=args.state_dim,
        seed=args.seed,
    )

    print(result.report())
    print("\nTraining time per model:",
          {name: f"{seconds:.1f}s" for name, seconds in result.training_seconds.items()})

    extended_geant2 = result.mean_error("extended-geant2")
    original_geant2 = result.mean_error("original-geant2")
    extended_nsfnet = result.mean_error("extended-nsfnet")
    original_nsfnet = result.mean_error("original-nsfnet")
    print("\nPaper's qualitative claims:")
    print(f"  extended beats original on GEANT2 : {extended_geant2 < original_geant2} "
          f"({extended_geant2:.3f} vs {original_geant2:.3f})")
    print(f"  extended beats original on NSFNET : {extended_nsfnet < original_nsfnet} "
          f"({extended_nsfnet:.3f} vs {original_nsfnet:.3f})")


if __name__ == "__main__":
    main()
