"""Using the trained GNN as a fast "what-if" network model for routing choice.

The knowledge-defined-networking motivation of RouteNet is that a fast,
accurate performance model can drive optimisation: instead of simulating
every candidate configuration, the controller queries the GNN.  This example
trains an Extended RouteNet on GEANT2 scenarios and then uses it to rank
candidate routing schemes for a new traffic matrix, comparing its ranking
against the analytic ground-truth generator.

Run with::

    python examples/what_if_routing_optimization.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DatasetConfig,
    ExtendedRouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    generate_dataset,
    geant2_topology,
)
from repro.datasets import AnalyticGroundTruth
from repro.routing import random_variation_routing, shortest_path_routing
from repro.topology.generators import assign_queue_sizes
from repro.traffic import scaled_to_utilization, uniform_traffic


def main() -> None:
    rng = np.random.default_rng(3)

    # 1. Train the model on mixed-queue GEANT2 scenarios with varied routing.
    topology = geant2_topology()
    config = DatasetConfig(num_samples=24, small_queue_fraction=0.5,
                           routing_variation=2, utilization_range=(0.4, 0.85), seed=3)
    samples = generate_dataset(topology, config)
    model = ExtendedRouteNet(RouteNetConfig(link_state_dim=16, path_state_dim=16,
                                            node_state_dim=16,
                                            message_passing_iterations=4, seed=3))
    trainer = RouteNetTrainer(model, TrainerConfig(epochs=8, learning_rate=0.003, seed=3))
    trainer.fit(samples)
    print(f"trained on {len(samples)} scenarios\n")

    # 2. A new operating point: fixed queue sizes and traffic, several
    #    candidate routing schemes to choose from.
    scenario_topology = assign_queue_sizes(topology, 0.5, rng=rng)
    candidates = {"shortest-path": shortest_path_routing(scenario_topology)}
    for index in range(3):
        candidates[f"k-shortest-variant-{index}"] = random_variation_routing(
            scenario_topology, k=3, rng=np.random.default_rng(100 + index))

    oracle = AnalyticGroundTruth(noise_std=0.0)
    print(f"{'routing scheme':25s} {'GNN mean delay':>16s} {'oracle mean delay':>18s}")
    rankings = []
    for name, routing in candidates.items():
        traffic = uniform_traffic(24, 0.5, 1.5, rng=np.random.default_rng(55))
        traffic = scaled_to_utilization(traffic, routing, 0.75)
        oracle_sample = oracle.generate(scenario_topology, routing, traffic)
        predicted = trainer.predict_delays(oracle_sample)
        rankings.append((name, float(predicted.mean()), float(oracle_sample.delays.mean())))
        print(f"{name:25s} {predicted.mean() * 1e3:13.3f} ms {oracle_sample.delays.mean() * 1e3:15.3f} ms")

    best_by_gnn = min(rankings, key=lambda row: row[1])[0]
    best_by_oracle = min(rankings, key=lambda row: row[2])[0]
    print(f"\nGNN picks    : {best_by_gnn}")
    print(f"oracle picks : {best_by_oracle}")
    print("agreement    :", best_by_gnn == best_by_oracle)


if __name__ == "__main__":
    main()
