"""Ablation: does the accuracy gain really come from the node (queue-size) feature?

Trains two copies of the Extended RouteNet on the same mixed-queue dataset:
one sees the per-node queue sizes, the other has the node features zeroed out
(so it keeps the extra RNN_N parameters but carries no device information).
If the paper's explanation is right, the gap between the two should account
for most of the gap between the extended and the original architectures.

Run with::

    python examples/node_feature_ablation.py
"""

from __future__ import annotations

from repro import (
    DatasetConfig,
    ExtendedRouteNet,
    RouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    generate_dataset,
    nsfnet_topology,
    train_val_test_split,
)
from repro.models import evaluate_model


def main() -> None:
    # Fast links and short cables: queueing dominates, so the queue-size
    # feature carries most of the signal.
    config = DatasetConfig(num_samples=28, small_queue_fraction=0.5,
                           utilization_range=(0.6, 0.9), seed=11)
    samples = generate_dataset(nsfnet_topology(capacity=2e6, propagation_delay=0.0005),
                               config)
    train, _, test = train_val_test_split(samples, 0.75, 0.0, seed=11)
    print(f"dataset: {len(train)} training / {len(test)} evaluation samples\n")

    model_config = RouteNetConfig(link_state_dim=16, path_state_dim=16, node_state_dim=16,
                                  message_passing_iterations=4, seed=11)
    trainer_config = TrainerConfig(epochs=10, learning_rate=0.003, seed=11)

    variants = {
        "extended (queue sizes visible)": ExtendedRouteNet(model_config),
        "extended (node features zeroed)": ExtendedRouteNet(model_config,
                                                            use_node_features=False),
        "original RouteNet": RouteNet(model_config),
    }

    print(f"{'variant':35s} {'mean rel. error':>16s} {'median rel. error':>18s}")
    for name, model in variants.items():
        trainer = RouteNetTrainer(model, trainer_config)
        trainer.fit(train)
        metrics = evaluate_model(model, test, trainer.normalizer)
        print(f"{name:35s} {metrics['mean_relative_error']:16.3f} "
              f"{metrics['median_relative_error']:18.3f}")

    print("\nExpected ordering: queue sizes visible < node features zeroed ≈ original.")


if __name__ == "__main__":
    main()
